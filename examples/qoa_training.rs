//! Learning the Quality of Alerts from OCE labels — the paper's §IV
//! proposal: "OCEs provide their domain knowledge by creating labels …
//! a machine learning model could be trained and continuously updated so
//! that it can automatically absorb the human knowledge."
//!
//! Simulates that loop: oracle labels (with 10% labelling noise) train a
//! logistic model per criterion; held-out AUC shows the knowledge
//! transferred; a final `absorb` pass shows continual updating.
//!
//! Run with: `cargo run --example qoa_training`

use std::collections::HashMap;

use alertops::core::prelude::*;
use alertops::qoa::{auc, flip_labels, TrainConfig, FEATURE_NAMES};
use alertops::sim::scenarios;

fn main() {
    let out = scenarios::mini_study(5).run();
    let mut by_strategy: HashMap<StrategyId, Vec<&Alert>> = HashMap::new();
    for alert in &out.alerts {
        by_strategy.entry(alert.strategy()).or_default().push(alert);
    }

    // Features + oracle labels per strategy.
    let model_tmp = QoaModel::new();
    let mut features = Vec::new();
    let mut labels_handleable = Vec::new();
    let mut labels_indicative = Vec::new();
    for strategy in out.catalog.strategies() {
        let alerts = by_strategy
            .get(&strategy.id())
            .map(Vec::as_slice)
            .unwrap_or(&[]);
        features.push(model_tmp.features(
            strategy,
            out.catalog.sop(strategy.id()),
            alerts,
            &out.incidents,
        ));
        let profile = out.catalog.profile(strategy.id());
        let sop_ok = out
            .catalog
            .sop(strategy.id())
            .is_some_and(|s| s.completeness() > 0.8);
        labels_handleable.push(!profile.vague_title && sop_ok);
        labels_indicative.push(profile.is_clean());
    }
    let n = features.len();
    let split = n / 2;
    println!(
        "{} strategies, {} features each, 50/50 train/test split",
        n,
        FEATURE_NAMES.len()
    );

    let mut model = QoaModel::new();
    for (criterion, labels) in [
        (Criterion::Handleability, &labels_handleable),
        (Criterion::Indicativeness, &labels_indicative),
    ] {
        // OCEs are imperfect raters: 10% of training labels are flipped.
        let noisy = flip_labels(&labels[..split], 0.10, 42);
        let train_x: Vec<Vec<f64>> = features[..split].to_vec();
        model.fit(criterion, &train_x, &noisy, &TrainConfig::default());
        let scores: Vec<f64> = features[split..]
            .iter()
            .map(|x| model.predict_proba(criterion, x))
            .collect();
        match auc(&scores, &labels[split..]) {
            Some(a) => println!("{criterion:?}: held-out AUC {a:.3} (trained on noisy labels)"),
            None => println!("{criterion:?}: degenerate test split"),
        }
    }

    // Continual absorption: a fresh batch of labels arrives; the model
    // updates without retraining from scratch.
    let fresh_x: Vec<Vec<f64>> = features[split..].to_vec();
    let fresh_y = flip_labels(&labels_handleable[split..], 0.10, 43);
    for _ in 0..10 {
        model.absorb(Criterion::Handleability, &fresh_x, &fresh_y, 0.05);
    }
    let scores: Vec<f64> = features
        .iter()
        .map(|x| model.predict_proba(Criterion::Handleability, x))
        .collect();
    if let Some(a) = auc(&scores, &labels_handleable) {
        println!("Handleability after absorbing the second batch: full-set AUC {a:.3}");
    }

    // Worst-first ranking = the automatic anti-pattern shortlist.
    let items: Vec<(StrategyId, Vec<f64>)> = out
        .catalog
        .strategies()
        .iter()
        .zip(&features)
        .map(|(s, f)| (s.id(), f.clone()))
        .collect();
    println!("\npredicted lowest-handleability strategies:");
    for (id, p) in model
        .rank_worst_first(Criterion::Handleability, &items)
        .iter()
        .take(5)
    {
        let strategy = out.catalog.strategy(*id).expect("catalog strategy");
        println!("  {id} p(high)={p:.2}  {:?}", strategy.title_template());
    }
}
