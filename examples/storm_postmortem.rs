//! Streaming governance + postmortem: ingest a simulated day hour by
//! hour with [`StreamingGovernor`], watch for the storm onset, then
//! write the storm's Markdown postmortem — the incident-review artifact
//! the paper's methodology mined for anti-patterns.
//!
//! Run with: `cargo run --example storm_postmortem`

use alertops::core::prelude::*;
use alertops::core::{render_postmortem, PostmortemInput};
use alertops::detect::storm::detect_storms;
use alertops::detect::StormConfig;
use alertops::sim::scenarios;

fn main() {
    let out = scenarios::mini_study(3).run();
    let governor = AlertGovernor::new(out.catalog.strategies().to_vec(), GovernorConfig::default())
        .with_dependency_graph(out.topology.dependency_graph());

    // 1. Stream the first two days hour by hour.
    let mut streaming = StreamingGovernor::new(governor, StreamingConfig::default());
    let hours = 48u64;
    let mut storm_hours = Vec::new();
    for hour in 0..hours {
        let window: Vec<Alert> = out
            .alerts
            .iter()
            .filter(|a| a.hour_bucket() == hour)
            .cloned()
            .collect();
        let incidents: Vec<Incident> = out
            .incidents
            .iter()
            .filter(|i| i.started_at().hour_bucket() == hour)
            .cloned()
            .collect();
        let delta = streaming.ingest(&window, &incidents);
        if !delta.new_findings.is_empty() || delta.storm_active {
            println!(
                "hour {hour:02}: {} alerts{}{}",
                delta.alert_count,
                if delta.storm_active { " ⛈ STORM" } else { "" },
                if delta.new_findings.is_empty() {
                    String::new()
                } else {
                    format!(", {} new findings", delta.new_findings.len())
                }
            );
        }
        if delta.storm_active {
            storm_hours.push(hour);
        }
    }
    println!(
        "\nstreamed {} hours; storm flagged in {} of them",
        hours,
        storm_hours.len()
    );

    // 2. Postmortem for the worst storm of the streamed period.
    let streamed: Vec<Alert> = out
        .alerts
        .iter()
        .filter(|a| a.hour_bucket() < hours)
        .cloned()
        .collect();
    let storms = detect_storms(&streamed, &StormConfig::default());
    let Some(storm) = storms.iter().max_by_key(|s| s.total_alerts) else {
        println!("no storm this seed");
        return;
    };
    let governor = AlertGovernor::new(out.catalog.strategies().to_vec(), GovernorConfig::default())
        .with_dependency_graph(out.topology.dependency_graph());
    let report = governor.detect(&streamed, &out.incidents);
    let blocker = governor.derive_blocker(&report);
    let storm_alerts: Vec<Alert> = streamed
        .iter()
        .filter(|a| {
            storm.hours.contains(&a.hour_bucket()) && a.location().region() == &storm.region
        })
        .cloned()
        .collect();
    let pipeline = governor.react(&storm_alerts, blocker);

    let text = render_postmortem(&PostmortemInput {
        storm,
        alerts: &streamed,
        report: &report,
        pipeline: &pipeline,
        title_of: &|id| {
            out.catalog
                .strategy(id)
                .map_or_else(|| id.to_string(), |s| s.title_template().to_owned())
        },
    });
    println!("\n{text}");
}
