//! Preventative guidelines in action (the paper's RQ4 / "Avoid" stage):
//! lint a strategy catalog against the Target / Timing / Presentation
//! guidelines *before* any alert fires, then show how fixing a strategy
//! clears its violations.
//!
//! Run with: `cargo run --example strategy_lint`

use alertops::core::prelude::*;
use alertops::sim::scenarios;
use std::collections::BTreeSet;

fn main() {
    let out = scenarios::quickstart(13).run();

    // Context: which microservices are shielded by fault tolerance
    // (in production this comes from architecture docs; here from the
    // simulated topology).
    let fault_tolerant: BTreeSet<MicroserviceId> = out
        .topology
        .microservices()
        .iter()
        .filter(|ms| ms.fault_tolerant)
        .map(|ms| ms.id)
        .collect();

    let governor = AlertGovernor::new(
        out.catalog.strategies().to_vec(),
        GovernorConfig {
            guideline_context: GuidelineContext { fault_tolerant },
            ..GovernorConfig::default()
        },
    )
    .with_sops(
        out.catalog
            .strategies()
            .iter()
            .filter_map(|s| out.catalog.sop(s.id()).cloned()),
    );

    let violations = governor.lint();
    println!(
        "linted {} strategies: {} guideline violations",
        out.catalog.strategies().len(),
        violations.len()
    );
    let count = |aspect| violations.iter().filter(|v| v.aspect == aspect).count();
    println!("  Target       : {}", count(GuidelineAspect::Target));
    println!("  Timing       : {}", count(GuidelineAspect::Timing));
    println!("  Presentation : {}", count(GuidelineAspect::Presentation));

    println!("\nsample violations:");
    for violation in violations.iter().take(8) {
        println!("  {violation}");
    }

    // Fix one offender: take a strategy with a vague title and rewrite it
    // the way the guidelines ask (component + manifestation).
    let linter = GuidelineLinter::new();
    let offender = out
        .catalog
        .strategies()
        .iter()
        .find(|s| {
            violations.iter().any(|v| {
                v.strategy == s.id()
                    && v.aspect == GuidelineAspect::Presentation
                    && v.message.contains("informativeness")
            })
        })
        .expect("some strategy has an unclear-title violation");
    println!(
        "\nfixing {}: {:?}",
        offender.id(),
        offender.title_template()
    );
    let fixed = offender.clone().with_title_template(format!(
        "{} request latency above threshold, user requests failing",
        out.topology
            .microservice(offender.microservice())
            .map_or("service", |ms| ms.name.as_str())
    ));
    let before = linter
        .lint(
            offender,
            out.catalog.sop(offender.id()),
            &GuidelineContext::default(),
        )
        .len();
    let after = linter
        .lint(
            &fixed,
            out.catalog.sop(offender.id()),
            &GuidelineContext::default(),
        )
        .len();
    println!("violations for that strategy: {before} -> {after}");
}
